// Package fairbench is a from-scratch Go reproduction of "Through the Data
// Management Lens: Experimental Analysis and Evaluation of Fair
// Classification" (Islam, Fariha, Meliou, Salimi — SIGMOD 2022).
//
// It provides, behind one public API:
//
//   - the three benchmark datasets (Adult, COMPAS, German) as calibrated
//     structural-causal-model generators with their literature causal
//     graphs;
//   - the 18 evaluated fair-classification variants across the three
//     pipeline stages (pre-, in-, and post-processing), plus the
//     fairness-unaware logistic-regression baseline;
//   - the paper's correctness metrics (accuracy, precision, recall, F1)
//     and fairness metrics (DI*, TPRB, TNRB, ID, TE, NDE, NIE);
//   - the five classifier families of the model-sensitivity study;
//   - the full experiment harness regenerating every figure and table of
//     the paper's evaluation section.
//
// Quick start:
//
//	src := fairbench.COMPAS(0, 1)
//	rows, err := fairbench.RunCorrectnessFairness(src, 42)
//
// # Parallel and batched execution
//
// Every experiment driver fans its (approach × dataset-slice) grid across
// a worker pool sized to GOMAXPROCS by default. Results are deterministic:
// for a fixed seed, a parallel run returns exactly the rows a serial run
// would, because each grid cell constructs its own approach and random
// stream from explicit seeds and cells share no mutable state. Only the
// timing fields (Seconds, Overhead) vary — under a parallel pool they
// are measured with the other cells competing for cores. The pure timing
// experiment (RunScalabilityRows/RunScalabilityAttrs, Figure 8) therefore
// always measures with one worker. Size the pool per run with
// RunOptions.Parallelism (zero means one worker per CPU, 1 forces serial
// execution):
//
//	out, rep, err := fairbench.Run(ctx, spec, fairbench.RunOptions{Parallelism: 8})
//
// The fairbench CLI exposes the same knob as -parallel N, the deprecated
// process-global SetParallelism remains for the driver functions that
// take a Source rather than a GridSpec, and the benchmark suite tracks
// the speedup (BenchmarkEvalAllSerial vs BenchmarkEvalAllParallel; see
// scripts/bench.sh, which records both to BENCH_parallel.json).
//
// Cells are executed batch-at-a-time: cells sharing one dataset
// materialization (same dataset slice, size, seed, and bias profile) are
// grouped, the first worker to reach a batch arms its shared read-only
// backing (the standardized design matrix, the post-processing
// approaches' common base fit), and every cell of the batch reads from
// it instead of recomputing. Sharing only ever covers artifacts each
// cell would compute bit-identically on its own, so batched output is
// byte-identical to cell-by-cell execution — the batch boundary moves
// work, never results.
//
// # Sharded execution
//
// Beyond the in-process pool, any experiment grid can fan across
// processes or hosts. A GridSpec names the experiment, dataset, size cap,
// and seed; because the benchmark datasets are synthesized from seeds,
// the spec fully determines every grid cell, so independent processes can
// each run one contiguous shard and the merged result is bit-identical
// (timing fields aside) to a single-process run:
//
//	spec := fairbench.GridSpec{Experiment: "fig7", Dataset: "compas", Seed: 42}
//	e0, _ := fairbench.RunShard(spec, 0, 3)   // any process / host
//	e1, _ := fairbench.RunShard(spec, 1, 3)
//	e2, _ := fairbench.RunShard(spec, 2, 3)
//	out, _ := fairbench.MergeShards([]*fairbench.ShardEnvelope{e0, e1, e2})
//
// Envelopes are plain JSON (rows + job indices + seed + a grid
// fingerprint); MergeShards rejects envelopes whose fingerprints
// disagree. The CLI exposes the same flow as
// `fairbench fig7 -dataset compas -shard 0/3 -out part0.json` followed by
// `fairbench merge part0.json part1.json part2.json`.
//
// # Result caching and resumable dispatch
//
// CacheDir installs an on-disk result cache keyed by (grid fingerprint,
// cell index, seed, GOARCH). Once installed, every grid execution path —
// the driver functions on stock benchmark sources, RunShard, and the
// dispatcher's workers — serves verified cache hits instead of
// recomputing cells, and re-running any figure computes only the
// cache-miss cells while staying byte-identical to a cold run:
//
//	fairbench.CacheDir(".fairbench-cache")
//	rows, _ := fairbench.RunCorrectnessFairness(src, 42) // cold: computes + caches
//	rows, _ = fairbench.RunCorrectnessFairness(src, 42)  // warm: zero computations
//
// Giving Run a directory makes it dispatch the grid as worker
// subprocesses and merge their envelopes; an interrupted (crashed,
// killed) run is resumed with ResumeRun, which reuses every completed
// envelope and cached cell:
//
//	spec := fairbench.GridSpec{Experiment: "fig7", Dataset: "compas", Seed: 42}
//	out, rep, err := fairbench.Run(ctx, spec, fairbench.RunOptions{
//		Dir: "run", Shards: 8, Procs: 4, CacheDir: "cache",
//	})
//	// ... a worker is SIGKILLed, err names the missing shards ...
//	out, rep, err = fairbench.ResumeRun(ctx, "run", fairbench.RunOptions{Procs: 4})
//
// The CLI exposes the same flow as `fairbench dispatch -exp fig7 ...`
// and `fairbench resume -dir run`.
//
// # Multi-host scheduling
//
// Setting RunOptions.Hosts generalizes the subprocess dispatcher to a
// pool of hosts with per-host concurrency slots, reusing the same
// manifest/part-file protocol. Work
// reaches a host through a pluggable transport — local subprocesses by
// default, or a worker binary run over any command runner (ssh-shaped)
// with the manifest streamed in and the envelope streamed back. Planning
// is cache-aware: ranges the result cache can fully serve never reach a
// host, and the rest are balanced by uncached cell count. Failed
// attempts are retried on other hosts, hosts that go silent past the
// heartbeat deadline are declared dead, and repeatedly failing hosts are
// excluded with their ranges reassigned to survivors — under every
// failure mode the merged output stays byte-identical (timing aside) to
// a serial run, or the run fails resumably:
//
//	hosts, _ := fairbench.LoadHosts("hosts.json")
//	spec := fairbench.GridSpec{Experiment: "fig7", Dataset: "compas", Seed: 42}
//	out, rep, err := fairbench.Run(ctx, spec, fairbench.RunOptions{
//		Dir: "run", Hosts: hosts, CacheDir: "cache",
//	})
//
// The CLI exposes the same flow as `fairbench sched -exp fig7 -hosts
// hosts.json -dir run -cache cache`.
//
// # Unified execution engine
//
// Run(ctx, spec, RunOptions) is the single entry point subsuming all
// of the above: the execution backend (in-process pool, subprocess
// dispatch, multi-host sched) is a RunOptions field, ctx cancels the
// run promptly with directories left resumable by ResumeRun, and a
// fully-cached grid is served without touching a worker or host:
//
//	out, rep, err := fairbench.Run(ctx, spec, fairbench.RunOptions{
//		Dir: "run", Shards: 8, Procs: 4, CacheDir: "cache",
//	})
//	// ... interrupted ...
//	out, rep, err = fairbench.ResumeRun(ctx, "run", fairbench.RunOptions{Procs: 4})
//
// Run and ResumeRun are the only whole-grid entry points — the
// deprecated Dispatch/Resume/Sched/SchedResume/RunShardCached wrappers
// they subsumed have been removed (the backend option structs remain as
// the types inside RunReport). The `fairbench serve` command exposes the
// same engine as a persistent HTTP service (see the README's "Serving"
// section).
//
// See the examples/ directory for runnable programs.
package fairbench

import (
	"context"
	"fmt"
	"sync"

	"fairbench/internal/causal"
	"fairbench/internal/classifier"
	"fairbench/internal/corrupt"
	"fairbench/internal/dataset"
	"fairbench/internal/dispatch"
	"fairbench/internal/engine"
	"fairbench/internal/experiments"
	"fairbench/internal/fair"
	"fairbench/internal/metrics"
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/runner"
	"fairbench/internal/sched"
	"fairbench/internal/shard"
	"fairbench/internal/store"
	"fairbench/internal/synth"
)

// Re-exported core types. The facade keeps downstream users off the
// internal packages while exposing the full object model.
type (
	// Dataset is an annotated dataset with schema (X, S; Y).
	Dataset = dataset.Dataset
	// Attr describes one attribute of X.
	Attr = dataset.Attr
	// Source bundles a dataset with its causal graph.
	Source = synth.Source
	// Graph is a causal DAG over the dataset's attributes.
	Graph = causal.Graph
	// Approach is a complete fair-classification pipeline.
	Approach = fair.Approach
	// Stage is the fairness-enforcing pipeline stage.
	Stage = fair.Stage
	// Classifier is a binary probabilistic classifier.
	Classifier = classifier.Classifier
	// Correctness holds the Figure 2 metrics.
	Correctness = metrics.Correctness
	// Fairness holds the raw Figure 4 metrics.
	Fairness = metrics.Fairness
	// NormalizedFairness holds the paper's [0,1] presentation scale.
	NormalizedFairness = metrics.Normalized
	// Row is the per-approach result of one evaluation.
	Row = experiments.Row
	// ErrorTemplate selects a Section 4.4 corruption template.
	ErrorTemplate = corrupt.Template
	// GridSpec is the serializable identity of one experiment job grid —
	// the unit of sharded execution.
	GridSpec = experiments.Spec
	// GridOutput is a fully assembled grid result (one payload field per
	// experiment kind).
	GridOutput = experiments.Output
	// ShardRange is one contiguous slice of a grid's job index space.
	ShardRange = shard.Range
	// ShardEnvelope is the JSON-serializable partial result of one shard.
	ShardEnvelope = shard.Envelope
	// DispatchOptions configures a Dispatch/Resume run (shard count,
	// worker processes, retries, cache directory).
	DispatchOptions = dispatch.Options
	// DispatchReport records what a dispatched run did: shards reused vs
	// executed, per-shard attempts, and the computed/cached cell split.
	DispatchReport = dispatch.Report
	// CacheCounters are the in-memory hit/miss/write/reject counters of
	// the installed result cache (plus transport-error counts for
	// remote-backed caches).
	CacheCounters = store.Counters
	// CacheBackend is a verified result cache: on-disk, remote HTTP, or
	// tiered (disk in front of a shared remote). See store.Backend.
	CacheBackend = store.Backend
	// CacheUsage summarizes the cache directory: entries, bytes, and
	// distinct grid fingerprints, plus the counters.
	CacheUsage = store.Stats
	// SchedHost describes one member of a multi-host execution pool.
	SchedHost = sched.Host
	// SchedTransport places one assigned range on a host (see
	// sched.LocalExec and sched.RemoteExec for the built-ins).
	SchedTransport = sched.Transport
	// SchedOptions configures a multi-host scheduled run (pool, shard
	// target, cache, heartbeat deadline, retry budget).
	SchedOptions = sched.Options
	// SchedReport records what a scheduled run did: the cache-aware
	// plan, ranges served from cache vs placed on hosts, per-host
	// deliveries, excluded hosts, and the computed/cached cell split.
	SchedReport = sched.Report
	// ShardPlan is a cache-aware split of one grid: contiguous ranges
	// annotated with their uncached cell counts.
	ShardPlan = experiments.ShardPlan
	// RunOptions configures a Run/ResumeRun call: one struct unifying
	// the knobs the three execution backends understand (see Backend).
	RunOptions = engine.RunOptions
	// RunReport describes what a Run did, normalized across backends;
	// the backend-native report rides along in its Dispatch/Sched field.
	RunReport = engine.Report
	// Backend selects how Run executes the grid: in-process pool,
	// subprocess dispatch, or multi-host sched.
	Backend = engine.Backend
	// Engine executes grids behind the unified API with pinned
	// defaults; see NewEngine.
	Engine = engine.Engine
	// SchedEvent is one observed scheduling transition (heartbeat,
	// completion, failure, exclusion); see RunOptions.OnEvent.
	SchedEvent = sched.Event
	// PoolSource feeds dynamic pool-membership changes (joins and
	// graceful leaves) into a running scheduled execution; see
	// RunOptions.PoolSource and sched.NewPoolChan / sched.WatchHosts.
	PoolSource = sched.PoolSource
	// PoolUpdate is one membership change a PoolSource delivers.
	PoolUpdate = sched.PoolUpdate
)

// Execution backends for RunOptions.Backend. BackendAuto resolves from
// the options: hosts given → sched, a directory given → dispatch,
// otherwise in-process.
const (
	BackendAuto     = engine.BackendAuto
	BackendInproc   = engine.BackendInproc
	BackendDispatch = engine.BackendDispatch
	BackendSched    = engine.BackendSched
)

// Pipeline stages.
const (
	StagePre  = fair.StagePre
	StageIn   = fair.StageIn
	StagePost = fair.StagePost
)

// Error templates of the robustness experiment.
const (
	T1 = corrupt.T1
	T2 = corrupt.T2
	T3 = corrupt.T3
)

// Adult generates the Adult census benchmark (n <= 0 uses the paper's
// 45,222 tuples). The sensitive attribute is Sex; the task is predicting
// income >= $50K.
func Adult(n int, seed int64) *Source { return synth.Adult(n, seed) }

// COMPAS generates the COMPAS recidivism benchmark (n <= 0 uses 7,214
// tuples). The sensitive attribute is Race; Y=1 is the favorable
// "does not reoffend" outcome.
func COMPAS(n int, seed int64) *Source { return synth.COMPAS(n, seed) }

// German generates the German credit benchmark (n <= 0 uses 1,000
// tuples). The sensitive attribute is Sex; Y=1 is low credit risk.
func German(n int, seed int64) *Source { return synth.German(n, seed) }

// Sources returns all three benchmarks at their paper sizes.
func Sources(seed int64) []*Source {
	return []*Source{Adult(0, seed), COMPAS(0, seed), German(0, seed)}
}

// ApproachNames lists the 18 evaluated variants in presentation order.
func ApproachNames() []string { return append([]string(nil), registry.Names...) }

// NewApproach constructs a variant by name ("LR" gives the baseline). The
// graph is required by the causal approaches and may be nil otherwise.
func NewApproach(name string, g *Graph, seed int64) (Approach, error) {
	return registry.New(name, registry.Config{Graph: g, Seed: seed})
}

// NewApproachWithModel is NewApproach with an explicit downstream model
// family for pre- and post-processing ("LR", "SVM", "kNN", "RF", "MLP").
func NewApproachWithModel(name, model string, g *Graph, seed int64) (Approach, error) {
	return registry.New(name, registry.Config{
		Graph: g, Factory: experiments.ModelFactory(model), Seed: seed,
	})
}

// Baseline returns the fairness-unaware logistic-regression classifier.
func Baseline() Approach { return fair.NewBaseline() }

// SetParallelism sets the process-wide default worker count every
// experiment driver uses for its job grid. n <= 0 restores the default,
// GOMAXPROCS; 1 forces serial execution. Metric results are identical at
// any setting for a fixed seed; the timing fields (Seconds, Overhead)
// reflect the selected concurrency, so use 1 for contention-free runtime
// studies. Safe to call concurrently with running experiments (in-flight
// runs keep their pool).
//
// Deprecated: prefer RunOptions.Parallelism, which scopes the pool size
// to one Run instead of mutating process-global state. SetParallelism
// remains as the only knob for the Source-based driver functions
// (RunCorrectnessFairness and friends), which carry no options struct.
func SetParallelism(n int) { runner.SetParallelism(n) }

// Parallelism reports the process-wide default worker count; a
// RunOptions.Parallelism override is not reflected here.
//
// Deprecated: see SetParallelism.
func Parallelism() int { return runner.Parallelism() }

// PlanShards reports the contiguous job ranges a k-way split of the
// spec's grid produces. The same plan is computed independently by every
// RunShard call, so no coordination beyond (spec, i, k) is needed.
func PlanShards(spec GridSpec, k int) ([]ShardRange, error) {
	return experiments.PlanShards(spec, k)
}

// RunShard executes shard i of a k-way split of the spec's experiment
// grid and returns its partial-result envelope (JSON-serializable; see
// ShardEnvelope.Encode). Shards share no state: each process
// re-synthesizes the dataset from the spec's seed, so shards may run on
// different hosts and still merge bit-identically — provided all hosts
// (and the merging process) share one CPU architecture, since float
// arithmetic differs across architectures (e.g. FMA contraction on
// arm64). Envelopes record GOARCH and MergeShards enforces the match.
func RunShard(spec GridSpec, i, k int) (*ShardEnvelope, error) {
	return experiments.RunShard(spec, i, k)
}

// MergeShards validates a complete shard set and reassembles the
// driver-native output, identical (timing fields aside) to a
// single-process run of the same spec. Envelopes with mismatched grid
// fingerprints are rejected.
func MergeShards(envs []*ShardEnvelope) (*GridOutput, error) {
	return experiments.MergeShards(envs)
}

// MergeShardsNamed is MergeShards with a provenance label (typically the
// source file path) per envelope: validation errors name the offending
// file, and an incomplete set fails listing the shard indices still
// missing.
func MergeShardsNamed(envs []*ShardEnvelope, names []string) (*GridOutput, error) {
	return experiments.MergeShardsNamed(envs, names)
}

// DecodeShardEnvelope parses and validates a serialized shard envelope.
func DecodeShardEnvelope(data []byte) (*ShardEnvelope, error) {
	return shard.Decode(data)
}

// activeCache tracks the handle CacheDir/CacheRemote installed, for the
// stat/GC API. disk is the local tier (nil for a remote-only install),
// the only backend with a directory to walk or collect.
var activeCache = struct {
	mu   sync.Mutex
	s    store.Backend
	disk *store.DiskStore
}{}

// CacheDir installs a process-wide on-disk result cache at dir (created
// if missing), or removes the cache when dir is empty. While installed,
// every grid execution path that has a fingerprint — the experiment
// drivers on stock benchmark sources, RunShard, Dispatch workers —
// consults it: cells cached under (grid fingerprint, cell index, seed,
// GOARCH) are served from disk after integrity verification, and
// freshly computed cells are written back atomically. Cached results are
// byte-identical to recomputation on the same architecture; entries
// never cross architectures or seeds. Note the cache also stores the
// pure-timing (fig8) cells — resumability requires it — so clear it, or
// run without one, to re-measure timings.
func CacheDir(dir string) error {
	return CacheRemote(dir, "")
}

// CacheRemote installs the process-wide result cache dir and remoteURL
// select (see store.OpenBackend): a local on-disk cache, a shared
// remote HTTP cache (`fairbench cachesrv` or a serve daemon's /cache
// mount), or — with both set — a tiered store that reads local-first,
// promotes remote hits, and writes computed cells through to the fleet.
// Every read is verified (key fields + SHA-256) regardless of backend;
// a remote outage degrades reads and writes to local-only rather than
// failing the run. Both arguments empty removes the cache.
func CacheRemote(dir, remoteURL string) error {
	activeCache.mu.Lock()
	defer activeCache.mu.Unlock()
	b, err := store.OpenBackend(dir, remoteURL)
	if err != nil {
		return err
	}
	activeCache.s = b
	activeCache.disk = nil
	if dir != "" {
		// The local tier is what Stats/GC walk; OpenBackend built it as
		// either the whole backend or the tiered front.
		switch s := b.(type) {
		case *store.DiskStore:
			activeCache.disk = s
		case *store.TieredStore:
			activeCache.disk, _ = s.Local().(*store.DiskStore)
		}
	}
	experiments.SetDefaultCache(b)
	return nil
}

// CacheStats returns the installed cache's in-memory counters (zero
// values when no cache is installed).
func CacheStats() CacheCounters {
	activeCache.mu.Lock()
	s := activeCache.s
	activeCache.mu.Unlock()
	if s == nil {
		return CacheCounters{}
	}
	return s.Counters()
}

// CacheDiskUsage walks the installed cache's local directory and reports
// entry count, bytes, and distinct grid fingerprints. A remote-only
// cache has no directory to walk and errors.
func CacheDiskUsage() (CacheUsage, error) {
	activeCache.mu.Lock()
	s := activeCache.disk
	activeCache.mu.Unlock()
	if s == nil {
		return CacheUsage{}, fmt.Errorf("fairbench: no on-disk cache installed (call CacheDir first)")
	}
	return s.Stats()
}

// CacheGC drops every cached grid except those the given specs
// materialize, returning how many grids were removed. Pass the specs of
// the figures still being iterated on; everything else is reclaimed.
func CacheGC(keep ...GridSpec) (removed int, err error) {
	activeCache.mu.Lock()
	s := activeCache.disk
	activeCache.mu.Unlock()
	if s == nil {
		return 0, fmt.Errorf("fairbench: no on-disk cache installed (call CacheDir first)")
	}
	inUse := map[string]bool{}
	for _, spec := range keep {
		fp, err := GridFingerprint(spec)
		if err != nil {
			return 0, err
		}
		inUse[fp] = true
	}
	return s.GC(func(fp string) bool { return inUse[fp] })
}

// GridFingerprint returns the shard/cache fingerprint the spec's grid
// materializes to: the identity under which its envelopes merge and its
// cells are cached.
func GridFingerprint(spec GridSpec) (string, error) {
	g, err := experiments.Open(spec)
	if err != nil {
		return "", err
	}
	return g.Fingerprint()
}

// defaultEngine backs the package-level Run/ResumeRun entry points.
var defaultEngine = engine.New(engine.RunOptions{})

// NewEngine returns an execution engine whose Run/ResumeRun calls
// default to the given options for fields they leave zero — how a
// long-lived embedder (e.g. the serve daemon) pins its state
// directory, host pool, cache, and spawn function once.
func NewEngine(defaults RunOptions) *Engine { return engine.New(defaults) }

// Run plans, executes, and merges the spec's experiment grid on the
// backend opts selects (in-process pool, subprocess dispatch, or
// multi-host sched), returning output byte-identical (timing fields
// aside) to a serial run. A cancelled ctx stops the run promptly —
// no new cells start, worker subprocesses are killed, in-flight host
// attempts are cancelled — with the error wrapping ctx.Err() and
// directory-backed runs left resumable via ResumeRun. With
// opts.CacheDir set, a fully-cached grid is served entirely by the
// calling process (RunReport.ServedFromCache: computed=0, no worker or
// host touched). Run subsumed the removed Dispatch, Sched, and
// RunShardCached entry points.
func Run(ctx context.Context, spec GridSpec, opts RunOptions) (*GridOutput, *RunReport, error) {
	return defaultEngine.Run(ctx, spec, opts)
}

// ResumeRun continues the directory-backed run recorded in dir —
// dispatch and sched directories share one manifest protocol, so either
// resumes here. Completed envelopes are validated and reused, missing
// work is executed (consulting the run's result cache at cell
// granularity), and the completed set is merged. ResumeRun replaces the
// deprecated Resume and SchedResume.
func ResumeRun(ctx context.Context, dir string, opts RunOptions) (*GridOutput, *RunReport, error) {
	return defaultEngine.ResumeRun(ctx, dir, opts)
}

// PlanShardsCacheAware plans a split of the spec's grid targeting k work
// ranges with the result cache at cacheDir consulted cell by cell:
// fully-cached stretches become skippable zero-work ranges and the rest
// is balanced by uncached cell count. An empty cacheDir plans every cell
// as work. Over a fully-cached grid the plan's Assigned() is empty.
func PlanShardsCacheAware(spec GridSpec, k int, cacheDir string) (*ShardPlan, error) {
	s, err := store.OpenBackend(cacheDir, "")
	if err != nil {
		return nil, err
	}
	return experiments.PlanShardsCacheAware(spec, k, s)
}

// LoadHosts reads a hosts.json pool definition (a JSON array of
// SchedHost objects) for RunOptions.Hosts.
func LoadHosts(path string) ([]SchedHost, error) { return sched.LoadHosts(path) }

// Split partitions a dataset with the paper's random hold-out protocol.
func Split(d *Dataset, trainFrac float64, seed int64) (train, test *Dataset) {
	return d.Split(trainFrac, rng.New(seed))
}

// Evaluate fits an approach and computes every metric on the test set.
func Evaluate(a Approach, train, test *Dataset, g *Graph) (Row, error) {
	return experiments.Evaluate(a, train, test, g)
}

// MeasureFairness computes the raw fairness metrics of predictions yhat on
// d. The predictor p enables the ID metric and may be nil; the graph
// enables the causal metrics and may be nil.
func MeasureFairness(d *Dataset, yhat []int, p Approach, g *Graph) Fairness {
	var pred metrics.Predictor
	if p != nil {
		pred = p
	}
	return metrics.ComputeFairness(d, yhat, pred, g)
}

// MeasureCorrectness computes the Figure 2 metrics.
func MeasureCorrectness(y, yhat []int) Correctness {
	return metrics.ComputeCorrectness(y, yhat)
}

// Normalize maps raw fairness values onto the paper's [0,1] scale.
func Normalize(f Fairness) NormalizedFairness { return metrics.Normalize(f) }

// Corrupt applies one of the Section 4.4 error templates (COMPAS schema)
// with the paper's 50%/10% disproportionate rates.
func Corrupt(d *Dataset, t ErrorTemplate, seed int64) (*Dataset, error) {
	return corrupt.ApplyCOMPAS(d, t, seed)
}

// RunCorrectnessFairness regenerates Figure 7 for one dataset.
func RunCorrectnessFairness(src *Source, seed int64) ([]Row, error) {
	return experiments.CorrectnessFairness(src, seed)
}

// RunRobustness regenerates Figure 9 (T1-T3 on a COMPAS-schema source).
func RunRobustness(src *Source, seed int64) ([]experiments.RobustnessResult, error) {
	return experiments.Robustness(src, seed)
}

// RunModelSensitivity regenerates Figure 10 / Figure 21.
func RunModelSensitivity(src *Source, seed int64) ([]experiments.SensitivityRow, error) {
	return experiments.ModelSensitivity(src, nil, seed)
}

// RunCrossValidation regenerates the Figures 16-18 k-fold tables.
func RunCrossValidation(src *Source, k int, seed int64) ([]Row, error) {
	return experiments.CrossValidate(src, k, seed)
}

// RunStability regenerates Figure 22.
func RunStability(src *Source, runs int, seed int64) ([]experiments.StabilityRow, error) {
	return experiments.Stability(src, runs, seed)
}

// RunDataEfficiency regenerates Figure 23.
func RunDataEfficiency(src *Source, sizes []int, seed int64) (map[string][]experiments.EfficiencyPoint, error) {
	return experiments.DataEfficiency(src, sizes, nil, seed)
}

// RunScalabilityRows regenerates Figure 8(a-c).
func RunScalabilityRows(src *Source, sizes []int, seed int64) (map[string][]experiments.ScalabilityPoint, error) {
	return experiments.ScalabilityRows(src, sizes, registry.Names, seed)
}

// RunScalabilityAttrs regenerates Figure 8(d-f).
func RunScalabilityAttrs(src *Source, attrCounts []int, sampleSize int, seed int64) (map[string][]experiments.ScalabilityPoint, error) {
	return experiments.ScalabilityAttrs(src, attrCounts, registry.Names, sampleSize, seed)
}
