module fairbench

go 1.24
