package preproc

import (
	"math"
	"sort"

	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/optimize"
	"fairbench/internal/rng"
)

// Calmon implements Calmon et al.'s optimized pre-processing: a randomized
// mapping of (X, Y) onto (X', Y') that (1) brings the label distribution of
// the two sensitive groups within a demographic-parity tolerance, (2) keeps
// the mapped joint distribution close to the original, and (3) bounds
// per-tuple distortion by only moving attribute values to adjacent
// discretization bins and penalizing label flips.
//
// The original uses a convex program over the full discretized joint; this
// implementation optimizes the same objective with projected gradient
// descent over per-group transition matrices whose rows live on the
// probability simplex — and inherits the original's cost profile: the
// number of cells (and hence runtime) grows exponentially with the number
// of attributes included (Section 4.3's scalability finding).
type Calmon struct {
	// Bins is the per-attribute discretization granularity (default 3).
	Bins int
	// MaxAttrs caps how many attributes enter the joint distribution
	// (default 6); the most label-correlated attributes are chosen.
	MaxAttrs int
	// Epsilon is the demographic-parity tolerance on the mapped labels
	// (default 0.02).
	Epsilon float64
	// Iters bounds the projected-gradient optimization (default 150).
	Iters int
	// Seed drives the randomized application of the mapping.
	Seed int64

	disc     *dataset.Discretizer
	attrs    []int       // chosen attribute columns
	cards    []int       // per chosen attribute bin counts
	nCells   int         // product of cards
	binMid   [][]float64 // representative value per (chosen attr, bin)
	trans    [2][][]float64
	targets  [][]target
	fitted   bool
	origMean [2]float64

	// Per-instance scratch reused by the repair-application and
	// TransformRow hot loops (one Calmon instance serves one grid cell;
	// predictions are sequential within a cell).
	binScratch []int
	rowScratch []float64
	expScratch []float64
}

type target struct {
	cell, y int
	dist    float64 // distortion cost of moving to this target
}

// RepairName implements fair.Repairer.
func (c *Calmon) RepairName() string { return "Calmon" }

func (c *Calmon) defaults() {
	if c.Bins == 0 {
		c.Bins = 3
	}
	if c.MaxAttrs == 0 {
		c.MaxAttrs = 6
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.02
	}
	if c.Iters == 0 {
		c.Iters = 150
	}
}

// chooseAttrs picks the attributes most correlated with the label.
func (c *Calmon) chooseAttrs(d *dataset.Dataset) []int {
	type scored struct {
		j int
		r float64
	}
	var sc []scored
	my := 0.0
	for _, y := range d.Y {
		my += float64(y)
	}
	my /= float64(d.Len())
	for j := 0; j < d.Dim(); j++ {
		col := d.Column(j)
		var mx float64
		for _, v := range col {
			mx += v
		}
		mx /= float64(len(col))
		var cov, vx, vy float64
		for i, v := range col {
			dx := v - mx
			dy := float64(d.Y[i]) - my
			cov += dx * dy
			vx += dx * dx
			vy += dy * dy
		}
		r := 0.0
		if vx > 0 && vy > 0 {
			r = math.Abs(cov / math.Sqrt(vx*vy))
		}
		sc = append(sc, scored{j, r})
	}
	sort.Slice(sc, func(a, b int) bool { return sc[a].r > sc[b].r })
	k := c.MaxAttrs
	if k > len(sc) {
		k = len(sc)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = sc[i].j
	}
	sort.Ints(out)
	return out
}

// cellOf computes the joint bin code of a row over the chosen attributes.
func (c *Calmon) cellOf(row []float64) int {
	code, mult := 0, 1
	for k, j := range c.attrs {
		code += c.disc.Bin(j, row[j]) * mult
		mult *= c.cards[k]
	}
	return code
}

// binsOf decodes a cell code into per-chosen-attribute bin indices.
func (c *Calmon) binsOf(cell int) []int {
	out := make([]int, len(c.attrs))
	c.binsInto(cell, out)
	return out
}

// binsInto decodes cell into out without allocating (out has len(attrs)).
func (c *Calmon) binsInto(cell int, out []int) {
	for k := range c.attrs {
		out[k] = cell % c.cards[k]
		cell /= c.cards[k]
	}
}

// neighbors returns the reachable (cell', y') targets of state (cell, y):
// the cell itself and every cell differing by ±1 bin in one attribute,
// crossed with both labels, with distortion = bin moves + 2·label flips.
// Capacities are exact (1 + up to 2 moves per attribute, times 2 labels)
// so the per-state precompute loop does not churn the allocator.
func (c *Calmon) neighbors(cell, y int) []target {
	bins := c.binsOf(cell)
	cells := make([]int, 1, 2*len(c.attrs)+1)
	cells[0] = cell
	mult := 1
	for k := range c.attrs {
		if bins[k] > 0 {
			cells = append(cells, cell-mult)
		}
		if bins[k] < c.cards[k]-1 {
			cells = append(cells, cell+mult)
		}
		mult *= c.cards[k]
	}
	out := make([]target, 0, 2*len(cells))
	for _, cc := range cells {
		for yy := 0; yy < 2; yy++ {
			d := 0.0
			if cc != cell {
				d += 1
			}
			if yy != y {
				d += 2
			}
			out = append(out, target{cell: cc, y: yy, dist: d})
		}
	}
	return out
}

// Repair implements fair.Repairer.
func (c *Calmon) Repair(train *dataset.Dataset) (*dataset.Dataset, error) {
	c.defaults()
	c.disc = dataset.FitDiscretizer(train, c.Bins)
	c.attrs = c.chooseAttrs(train)
	c.cards = make([]int, len(c.attrs))
	c.nCells = 1
	for k, j := range c.attrs {
		c.cards[k] = c.disc.Cardinality(j)
		c.nCells *= c.cards[k]
	}

	// Representative value per (chosen attribute, bin): the mean of the
	// training values falling in the bin.
	c.binMid = make([][]float64, len(c.attrs))
	for k, j := range c.attrs {
		sums := make([]float64, c.cards[k])
		cnts := make([]float64, c.cards[k])
		for _, row := range train.X {
			b := c.disc.Bin(j, row[j])
			sums[b] += row[j]
			cnts[b]++
		}
		mids := make([]float64, c.cards[k])
		for b := range mids {
			if cnts[b] > 0 {
				mids[b] = sums[b] / cnts[b]
			}
		}
		c.binMid[k] = mids
	}

	// Empirical joint p_s(cell, y).
	nState := c.nCells * 2
	var p [2][]float64
	p[0] = make([]float64, nState)
	p[1] = make([]float64, nState)
	var gn [2]float64
	for i, row := range train.X {
		s := train.S[i]
		p[s][c.cellOf(row)*2+train.Y[i]]++
		gn[s]++
	}
	for s := 0; s < 2; s++ {
		for k := range p[s] {
			p[s][k] /= math.Max(gn[s], 1)
		}
		var pos float64
		for cell := 0; cell < c.nCells; cell++ {
			pos += p[s][cell*2+1]
		}
		c.origMean[s] = pos
	}

	// Precompute targets per state.
	c.targets = make([][]target, nState)
	for st := 0; st < nState; st++ {
		c.targets[st] = c.neighbors(st/2, st%2)
	}

	for s := 0; s < 2; s++ {
		ps := p[s]
		// Only states with empirical mass enter the optimization. A
		// zero-mass state contributes nothing to any objective term and
		// receives zero gradient, so through every projected-gradient step
		// its transition row stays bit-for-bit at the identity
		// initialization (projecting an identity simplex row is an exact
		// no-op). Packing just the active rows makes each iteration
		// O(observed states) instead of O(attribute-domain product) — the
		// exponential blow-up the paper's Section 4.3 measures — while
		// computing the identical trajectory in the identical float order.
		var active []int
		for st := 0; st < nState; st++ {
			if ps[st] != 0 {
				active = append(active, st)
			}
		}
		offsets := make([]int, len(active)+1)
		for k, st := range active {
			offsets[k+1] = offsets[k] + len(c.targets[st])
		}
		theta := make([]float64, offsets[len(active)])
		// Initialize as identity-ish: all mass on the self target.
		for k, st := range active {
			for ti, t := range c.targets[st] {
				if t.cell == st/2 && t.y == st%2 {
					theta[offsets[k]+ti] = 1
				}
			}
		}
		sOther := 1 - s
		// Ascending state indices where ps or the mapped q can be nonzero:
		// the active states and every target reachable from one. The
		// objective's distribution loops run over this support instead of
		// the full state space — every omitted state contributes an exact
		// 0.0 term (both q and ps are zero there), and the surviving terms
		// keep their ascending order, so each sum is bit-identical to the
		// full-space fold.
		inSupport := make([]bool, nState)
		for _, st := range active {
			inSupport[st] = true
			for _, t := range c.targets[st] {
				inSupport[t.cell*2+t.y] = true
			}
		}
		var support []int
		for st := 0; st < nState; st++ {
			if inSupport[st] {
				support = append(support, st)
			}
		}
		// Demographic-parity anchor; both groups move toward the overall
		// rate. Constant across the optimization, so computed once.
		overall := (c.origMean[0]*gn[0] + c.origMean[1]*gn[1]) / (gn[0] + gn[1])
		_ = sOther
		const lamDP, lamClose, lamDist = 600.0, 5.0, 1.0
		// Flattened per-theta-entry tables: everything the objective reads
		// per entry that is constant across iterations — the mapped state
		// index, source mass, distortion distance, positive-label flag, and
		// the constant distortion-gradient term lamDist·mass·dist (the same
		// product the per-eval loop computed; multiplying identical floats
		// is deterministic, so folding it here changes no bit). Walking
		// these dense arrays replaces the slice-of-struct target chase on
		// the optimizer's hottest path.
		nTheta := offsets[len(active)]
		tState := make([]int, nTheta)     // t.cell*2 + t.y
		tMass := make([]float64, nTheta)  // ps[source state]
		tDist := make([]float64, nTheta)  // t.dist
		tGrad0 := make([]float64, nTheta) // lamDist * mass * dist
		tPos := make([]bool, nTheta)      // t.y == 1
		for k, st := range active {
			mass := ps[st]
			for ti, t := range c.targets[st] {
				gi := offsets[k] + ti
				tState[gi] = t.cell*2 + t.y
				tMass[gi] = mass
				tDist[gi] = t.dist
				tGrad0[gi] = lamDist * mass * t.dist
				tPos[gi] = t.y == 1
			}
		}
		// Odd (positive-label) support states, for the qPos fold.
		var oddSupport []int
		for _, st := range support {
			if st%2 == 1 {
				oddSupport = append(oddSupport, st)
			}
		}
		q := make([]float64, nState) // mapped distribution, reused per eval
		obj := func(w []float64, grad []float64) float64 {
			for _, st := range support {
				q[st] = 0
			}
			// Mapped distribution q and its positive-label mass. The shared
			// product mass·w0 feeds both sums exactly as the nested loop's
			// q += mass*w0 and distortion += (mass*w0)*dist did.
			var distortion float64
			w = w[:nTheta]
			for gi, w0 := range w {
				mw := tMass[gi] * w0
				q[tState[gi]] += mw
				distortion += mw * tDist[gi]
			}
			var qPos float64
			for _, st := range oddSupport {
				qPos += q[st]
			}
			gap := qPos - overall
			viol := math.Max(0, math.Abs(gap)-c.Epsilon)
			// Closeness of mapped to original distribution.
			var close float64
			for _, st := range support {
				dq := q[st] - ps[st]
				close += dq * dq
			}
			val := lamDist*distortion + lamDP*viol*viol + lamClose*close
			// Gradient: each entry is written exactly once, as the same
			// three-term sum (distortion + closeness + parity, in that
			// order, starting from zero) the accumulating loop produced.
			sign := 1.0
			if gap < 0 {
				sign = -1
			}
			dpCoef := lamDP * 2 * viol * sign
			grad = grad[:nTheta]
			for gi := range grad {
				g := tGrad0[gi]
				dq := q[tState[gi]] - ps[tState[gi]]
				g += lamClose * 2 * dq * tMass[gi]
				if viol > 0 && tPos[gi] {
					g += dpCoef * tMass[gi]
				}
				grad[gi] = g
			}
			return val
		}
		project := func(w []float64) {
			for k := range active {
				optimize.ProjectSimplex(w[offsets[k]:offsets[k+1]])
			}
		}
		theta, _ = optimize.GradientDescent(obj, theta, optimize.GDConfig{
			Step: 0.5, MaxIter: c.Iters, Project: project,
		})
		// Store the learned per-state rows; states never observed in this
		// group keep the identity mapping the optimizer would have left
		// them with.
		rows := make([][]float64, nState)
		for k, st := range active {
			rows[st] = append([]float64(nil), theta[offsets[k]:offsets[k+1]]...)
		}
		for st := 0; st < nState; st++ {
			if rows[st] != nil {
				continue
			}
			r := make([]float64, len(c.targets[st]))
			for ti, t := range c.targets[st] {
				if t.cell == st/2 && t.y == st%2 {
					r[ti] = 1
				}
			}
			rows[st] = r
		}
		c.trans[s] = rows
	}
	c.fitted = true

	// Apply the randomized mapping to the training data.
	g := rng.New(c.Seed)
	out := train.Clone()
	for i, row := range out.X {
		s := train.S[i]
		st := c.cellOf(train.X[i])*2 + train.Y[i]
		tgt := c.targets[st]
		ti := g.Categorical(c.trans[s][st])
		c.applyCell(row, tgt[ti].cell)
		out.Y[i] = tgt[ti].y
	}
	return out, nil
}

// applyCell rewrites the chosen attributes of row to the representative
// values of the target cell.
func (c *Calmon) applyCell(row []float64, cell int) {
	if c.binScratch == nil {
		c.binScratch = make([]int, len(c.attrs))
	}
	c.binsInto(cell, c.binScratch)
	for k, j := range c.attrs {
		row[j] = c.binMid[k][c.binScratch[k]]
	}
}

// TransformRow implements fair.TestTransformer: test features move to the
// expected target cell representative (deterministic; labels are unknown
// at test time so the two label rows are averaged by the group's label
// rate). Per the TestTransformer contract the returned slice is scratch
// reused by the next call; callers copy before the next transform.
func (c *Calmon) TransformRow(x []float64, s int) []float64 {
	if !c.fitted {
		return x
	}
	out := append(c.rowScratch[:0], x...)
	c.rowScratch = out[:0]
	cell := c.cellOf(x)
	// Average the expected representative value over the two label rows
	// weighted by the group's original label distribution.
	wy1 := c.origMean[s]
	if c.expScratch == nil {
		c.expScratch = make([]float64, len(c.attrs))
	}
	if c.binScratch == nil {
		c.binScratch = make([]int, len(c.attrs))
	}
	exp, bins := c.expScratch, c.binScratch
	for k := range exp {
		exp[k] = 0
	}
	var norm float64
	for y := 0; y < 2; y++ {
		wy := wy1
		if y == 0 {
			wy = 1 - wy1
		}
		st := cell*2 + y
		for ti, t := range c.targets[st] {
			w := wy * c.trans[s][st][ti]
			c.binsInto(t.cell, bins)
			for k := range c.attrs {
				exp[k] += w * c.binMid[k][bins[k]]
			}
			norm += w
		}
	}
	if norm > 0 {
		for k, j := range c.attrs {
			out[j] = exp[k] / norm
		}
	}
	return out
}

// NewCalmon returns the evaluated Calmon^dp approach.
func NewCalmon(factory classifier.Factory, seed int64) fair.Approach {
	return &fair.PreProcessed{
		ApproachName: "Calmon-DP",
		Target:       []fair.Metric{fair.MetricDI},
		Mechanism:    &Calmon{Seed: seed},
		Factory:      factory,
		IncludeS:     true,
	}
}
