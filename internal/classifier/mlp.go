package classifier

import (
	"math"

	"fairbench/internal/matrix"
	"fairbench/internal/rng"
)

// MLP is a one-hidden-layer perceptron with tanh hidden units and a
// sigmoid output, trained by mini-batch SGD on the weighted log loss with
// L2 regularization — the paper's fifth model family (20 hidden neurons,
// alpha = 0.01, Appendix F).
type MLP struct {
	// Hidden is the hidden-layer width (default 20).
	Hidden int
	// Alpha is the L2 penalty (default 0.01).
	Alpha float64
	// Epochs is the number of training passes (default 60).
	Epochs int
	// Step is the SGD learning rate (default 0.05).
	Step float64
	// Batch is the mini-batch size (default 32).
	Batch int
	// Seed drives initialization and shuffling.
	Seed int64

	w1 [][]float64 // hidden x (d+1), last column bias
	w2 []float64   // hidden+1, last entry bias
}

// NewMLP returns an MLP with the paper's defaults.
func NewMLP() *MLP {
	return &MLP{Hidden: 20, Alpha: 0.01, Epochs: 60, Step: 0.05, Batch: 32, Seed: 3}
}

// Fit trains the network.
func (m *MLP) Fit(x [][]float64, y []int, w []float64) error {
	if err := checkFitInput(x, y, w); err != nil {
		return err
	}
	if m.Hidden == 0 {
		m.Hidden = 20
	}
	if m.Epochs == 0 {
		m.Epochs = 60
	}
	if m.Step == 0 {
		m.Step = 0.05
	}
	if m.Batch == 0 {
		m.Batch = 32
	}
	n, d := len(x), len(x[0])
	g := rng.New(m.Seed)
	scale := 1 / math.Sqrt(float64(d)+1)
	m.w1 = make([][]float64, m.Hidden)
	for h := range m.w1 {
		m.w1[h] = make([]float64, d+1)
		for j := range m.w1[h] {
			m.w1[h][j] = g.Normal(0, scale)
		}
	}
	m.w2 = make([]float64, m.Hidden+1)
	for h := range m.w2 {
		m.w2[h] = g.Normal(0, 1/math.Sqrt(float64(m.Hidden)+1))
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	hid := make([]float64, m.Hidden)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		g.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < n; start += m.Batch {
			end := start + m.Batch
			if end > n {
				end = n
			}
			g1 := make([][]float64, m.Hidden)
			for h := range g1 {
				g1[h] = make([]float64, d+1)
			}
			g2 := make([]float64, m.Hidden+1)
			var bw float64
			for _, i := range order[start:end] {
				wi := weightOf(w, i)
				bw += wi
				// Forward.
				for h := 0; h < m.Hidden; h++ {
					z := m.w1[h][d]
					for j, v := range x[i] {
						z += m.w1[h][j] * v
					}
					hid[h] = math.Tanh(z)
				}
				out := m.w2[m.Hidden]
				for h := 0; h < m.Hidden; h++ {
					out += m.w2[h] * hid[h]
				}
				p := matrix.Sigmoid(out)
				// Backward.
				dOut := wi * (p - float64(y[i]))
				for h := 0; h < m.Hidden; h++ {
					g2[h] += dOut * hid[h]
					dHid := dOut * m.w2[h] * (1 - hid[h]*hid[h])
					for j, v := range x[i] {
						g1[h][j] += dHid * v
					}
					g1[h][d] += dHid
				}
				g2[m.Hidden] += dOut
			}
			if bw == 0 {
				continue
			}
			lr := m.Step
			for h := 0; h < m.Hidden; h++ {
				for j := 0; j <= d; j++ {
					m.w1[h][j] -= lr * (g1[h][j]/bw + m.Alpha*m.w1[h][j])
				}
				m.w2[h] -= lr * (g2[h]/bw + m.Alpha*m.w2[h])
			}
			m.w2[m.Hidden] -= lr * g2[m.Hidden] / bw
		}
	}
	return nil
}

// PredictProba runs the forward pass.
func (m *MLP) PredictProba(x []float64) float64 {
	if m.w1 == nil {
		return 0.5
	}
	d := len(m.w1[0]) - 1
	out := m.w2[m.Hidden]
	for h := 0; h < m.Hidden; h++ {
		z := m.w1[h][d]
		for j := 0; j < d && j < len(x); j++ {
			z += m.w1[h][j] * x[j]
		}
		out += m.w2[h] * math.Tanh(z)
	}
	return matrix.Sigmoid(out)
}
