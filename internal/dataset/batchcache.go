package dataset

import "sync"

// BatchCache is the arm-once memo a batch of grid cells sharing one
// training split uses to compute a derived artifact exactly once: the
// first cell to ask for a key pays for the build, every later cell —
// including cells racing on other workers — receives the same value. It
// generalizes DesignCache (which memoizes one fixed artifact, the
// standardized design matrix) to arbitrary keys, so higher layers can
// share whatever their cells derive identically from the split (e.g. the
// post-processing approaches' common base fit) without this package
// importing them.
//
// Correctness contract, mirrored from DesignCache: builds must be
// deterministic functions of the dataset view and the key, and consumers
// must treat shared values as read-only (or copy the mutable parts), so
// arming the cache can never change grid output — only who computes it.
type BatchCache struct {
	entries sync.Map // comparable key -> *batchEntry
}

type batchEntry struct {
	once sync.Once
	val  any
	err  error
}

// Do returns the memoized value for key, running build exactly once per
// key across all concurrent callers. An error is memoized too: every
// caller of a failed key observes the same error, matching what each
// would have computed alone.
func (c *BatchCache) Do(key any, build func() (any, error)) (any, error) {
	e, _ := c.entries.LoadOrStore(key, &batchEntry{})
	be := e.(*batchEntry)
	be.once.Do(func() { be.val, be.err = build() })
	return be.val, be.err
}

// EnableBatchCache arms d with a batch cache. Idempotent and safe to call
// concurrently; intended for batch execution's per-batch prepare step,
// alongside EnableDesignCache.
func (d *Dataset) EnableBatchCache() {
	d.batch.CompareAndSwap(nil, &BatchCache{})
}

// Batch returns the armed batch cache, or nil when the dataset is not
// under batched execution — callers then compute per cell, the
// historical behavior.
func (d *Dataset) Batch() *BatchCache { return d.batch.Load() }
