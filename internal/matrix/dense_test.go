package matrix

import "testing"

func TestDenseRowViews(t *testing.T) {
	d := NewDense(3, 2)
	d.Set(1, 1, 5)
	if d.At(1, 1) != 5 || d.Data[3] != 5 {
		t.Fatalf("Set/At disagree with flat layout: %v", d.Data)
	}
	r := d.Row(1)
	r[0] = 7
	if d.At(1, 0) != 7 {
		t.Fatal("Row must be a view into the backing array")
	}
	if cap(r) != 2 {
		t.Fatalf("Row view must be capacity-capped to its row, cap=%d", cap(r))
	}
	v := d.RowsView()
	v[2][1] = 9
	if d.At(2, 1) != 9 {
		t.Fatal("RowsView rows must alias the backing array")
	}
}

func TestDenseFromRowsClone(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}}
	d := FromRows(src)
	if d.Rows != 2 || d.Cols != 2 || d.At(1, 0) != 3 {
		t.Fatalf("FromRows: %+v", d)
	}
	src[0][0] = 99
	if d.At(0, 0) != 1 {
		t.Fatal("FromRows must copy")
	}
	c := d.Clone()
	c.Set(0, 0, 42)
	if d.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestDenseMatVecInto(t *testing.T) {
	d := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := []float64{1, -1}
	dst := make([]float64, 3)
	d.MatVecInto(dst, x)
	want := []float64{-1, -1, -1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MatVecInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// Matches the [][]float64 kernel bit for bit.
	ref := MatVec(d.RowsView(), x)
	for i := range ref {
		if ref[i] != dst[i] {
			t.Fatalf("MatVecInto diverges from MatVec at %d", i)
		}
	}
	tdst := make([]float64, 2)
	tx := []float64{1, 0, -1}
	d.TransposeMatVecInto(tdst, tx)
	tref := TransposeMatVec(d.RowsView(), tx)
	for i := range tref {
		if tref[i] != tdst[i] {
			t.Fatalf("TransposeMatVecInto diverges at %d", i)
		}
	}
}

func TestDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatVecInto must panic on a dimension mismatch")
		}
	}()
	NewDense(2, 2).MatVecInto(make([]float64, 3), []float64{1, 2})
}
