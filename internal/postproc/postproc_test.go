package postproc

import (
	"math"
	"testing"

	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/metrics"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

func trainTest(t *testing.T, n int) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	src := synth.COMPAS(n, 1)
	return src.Data.Split(0.7, rng.New(11))
}

func fitPredict(t *testing.T, a fair.Approach, train, test *dataset.Dataset) []int {
	t.Helper()
	if err := a.Fit(train); err != nil {
		t.Fatalf("%s fit: %v", a.Name(), err)
	}
	yhat, err := a.Predict(test)
	if err != nil {
		t.Fatalf("%s predict: %v", a.Name(), err)
	}
	return yhat
}

func TestKamKarImprovesDI(t *testing.T) {
	train, test := trainTest(t, 3000)
	b := fair.NewBaseline()
	byhat := fitPredict(t, b, train, test)
	base := metrics.DIStar(metrics.DisparateImpact(test, byhat))
	a := NewKamKar(nil, 3)
	yhat := fitPredict(t, a, train, test)
	di := metrics.DIStar(metrics.DisparateImpact(test, yhat))
	if di < base || di < 0.9 {
		t.Fatalf("KamKar DI* %v (baseline %v)", di, base)
	}
}

func TestKamKarThetaTuned(t *testing.T) {
	train, _ := trainTest(t, 2000)
	a := NewKamKar(nil, 3)
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	kk := a.(*fair.PostProcessed).Mechanism.(*KamKar)
	if kk.Theta() < 0.5 || kk.Theta() > 0.96 {
		t.Fatalf("theta out of range: %v", kk.Theta())
	}
}

func TestHardtEqualizesOdds(t *testing.T) {
	train, test := trainTest(t, 4000)
	b := fair.NewBaseline()
	byhat := fitPredict(t, b, train, test)
	baseTPRB := math.Abs(metrics.TPRBalance(test, byhat))
	baseTNRB := math.Abs(metrics.TNRBalance(test, byhat))
	a := NewHardt(nil, 5)
	yhat := fitPredict(t, a, train, test)
	tprb := math.Abs(metrics.TPRBalance(test, yhat))
	tnrb := math.Abs(metrics.TNRBalance(test, yhat))
	if tprb > baseTPRB+0.03 || tnrb > baseTNRB+0.03 {
		t.Fatalf("Hardt odds: tprb %v->%v tnrb %v->%v", baseTPRB, tprb, baseTNRB, tnrb)
	}
	h := a.(*fair.PostProcessed).Mechanism.(*Hardt)
	alpha, beta := h.MixingRates()
	for s := 0; s < 2; s++ {
		if alpha[s] < 0 || alpha[s] > 1 || beta[s] < 0 || beta[s] > 1 {
			t.Fatalf("mixing rates out of [0,1]: %v %v", alpha, beta)
		}
	}
}

func TestPleissShrinksTPRGap(t *testing.T) {
	train, test := trainTest(t, 4000)
	b := fair.NewBaseline()
	byhat := fitPredict(t, b, train, test)
	baseTPRB := math.Abs(metrics.TPRBalance(test, byhat))
	a := NewPleiss(nil, 7)
	yhat := fitPredict(t, a, train, test)
	tprb := math.Abs(metrics.TPRBalance(test, yhat))
	if tprb > baseTPRB+0.03 {
		t.Fatalf("Pleiss TPRB %v (baseline %v)", tprb, baseTPRB)
	}
	pl := a.(*fair.PostProcessed).Mechanism.(*Pleiss)
	if pl.Alpha() < 0 || pl.Alpha() > 1 {
		t.Fatalf("alpha out of range: %v", pl.Alpha())
	}
}

func TestPostProcessingViolatesID(t *testing.T) {
	// The paper's Section 4.2 finding: post-processing uses S directly in
	// the adjustment, so ID is substantially worse than for approaches
	// that drop S.
	train, test := trainTest(t, 3000)
	a := NewKamKar(nil, 3)
	fitPredict(t, a, train, test)
	id := metrics.IndividualDiscrimination(test, a.(*fair.PostProcessed))
	if id < 0.05 {
		t.Fatalf("KamKar should show individual discrimination, ID=%v", id)
	}
}

func TestPredictReproducible(t *testing.T) {
	train, test := trainTest(t, 2000)
	a1 := NewHardt(nil, 9)
	a2 := NewHardt(nil, 9)
	y1 := fitPredict(t, a1, train, test)
	y2 := fitPredict(t, a2, train, test)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("same seed must give identical randomized predictions")
		}
	}
}

func TestStages(t *testing.T) {
	for _, a := range []fair.Approach{NewKamKar(nil, 1), NewHardt(nil, 1), NewPleiss(nil, 1)} {
		if a.Stage() != fair.StagePost {
			t.Fatalf("%s: stage %v", a.Name(), a.Stage())
		}
	}
}
