package store

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
)

// conformanceHandle is one backend under the conformance suite, with
// the two hooks the backend-agnostic subtests need: a way to corrupt
// every stored copy of a key, and the total rejection count observable
// anywhere in the setup (client handle plus any server-side store —
// a remote backend rejects corrupt entries on whichever side reads
// them first, and the suite only cares that *someone* refused).
type conformanceHandle struct {
	b        Backend
	corrupt  func(t *testing.T, k Key)
	rejected func() int64
}

// corruptFile overwrites a stored entry with bytes that parse as JSON
// but fail key-field verification — the closest analogue to a mis-filed
// or tampered entry, which every backend must reject rather than serve.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("corrupting %s: %v", path, err)
	}
	if err := os.WriteFile(path, []byte(`{"version":1,"fingerprint":"tampered"}`), 0o644); err != nil {
		t.Fatal(err)
	}
}

// conformanceBackends builds each Backend implementation over fresh
// state: the on-disk store, the HTTP client against a real Handler
// server, and the tiered composition of both.
func conformanceBackends(t *testing.T) map[string]func(t *testing.T) conformanceHandle {
	return map[string]func(t *testing.T) conformanceHandle{
		"disk": func(t *testing.T) conformanceHandle {
			s := mustOpen(t)
			return conformanceHandle{
				b:        s,
				corrupt:  func(t *testing.T, k Key) { corruptFile(t, s.path(k)) },
				rejected: func() int64 { return s.Counters().Rejected },
			}
		},
		"remote": func(t *testing.T) conformanceHandle {
			sd := mustOpen(t)
			srv := httptest.NewServer(Handler(sd))
			t.Cleanup(srv.Close)
			r, err := NewRemote(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			return conformanceHandle{
				b:       r,
				corrupt: func(t *testing.T, k Key) { corruptFile(t, sd.path(k)) },
				// The server-side store rejects a corrupt entry before the
				// client ever sees bytes; a corrupt *response* would land on
				// the client's counter instead. Sum both.
				rejected: func() int64 { return r.Counters().Rejected + sd.Counters().Rejected },
			}
		},
		"tiered": func(t *testing.T) conformanceHandle {
			local := mustOpen(t)
			sd := mustOpen(t)
			srv := httptest.NewServer(Handler(sd))
			t.Cleanup(srv.Close)
			r, err := NewRemote(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			ts := NewTiered(local, r)
			return conformanceHandle{
				b: ts,
				// Both tiers hold a copy after a write-through; corrupt every
				// copy or the other tier would legitimately serve the cell.
				corrupt: func(t *testing.T, k Key) {
					corruptFile(t, local.path(k))
					corruptFile(t, sd.path(k))
				},
				rejected: func() int64 { return ts.Counters().Rejected + sd.Counters().Rejected },
			}
		},
	}
}

// TestBackendConformance runs the shared Backend contract over every
// implementation: verified round trips, key isolation, corruption
// rejection with recompute, Has/Get agreement, and concurrent same-key
// writers. New backends join the suite by adding a constructor above.
func TestBackendConformance(t *testing.T) {
	for name, mk := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("RoundTrip", func(t *testing.T) {
				h := mk(t)
				k := key(fpA, 3, 42)
				payload := []byte(`{"index":3,"row":{"acc":0.91}}`)
				if _, ok := h.b.Get(k); ok {
					t.Fatal("hit on empty backend")
				}
				if err := h.b.Put(k, payload); err != nil {
					t.Fatal(err)
				}
				got, ok := h.b.Get(k)
				if !ok || !bytes.Equal(got, payload) {
					t.Fatalf("round trip: ok=%v got=%s", ok, got)
				}
				c := h.b.Counters()
				if c.Hits == 0 || c.Writes == 0 || c.Rejected != 0 {
					t.Fatalf("counters %+v", c)
				}
			})

			t.Run("WrongKeyNeverHits", func(t *testing.T) {
				h := mk(t)
				good := key(fpA, 2, 1)
				if err := h.b.Put(good, []byte(`{"index":2}`)); err != nil {
					t.Fatal(err)
				}
				for name, forged := range map[string]Key{
					"wrong-seed":  key(fpA, 2, 99),
					"wrong-index": key(fpA, 5, 1),
					"wrong-arch":  {Fingerprint: fpA, Index: 2, Seed: 1, Arch: "arm64"},
					"wrong-fp":    key(fpB, 2, 1),
				} {
					if _, ok := h.b.Get(forged); ok {
						t.Fatalf("%s: lookup satisfied by an entry written under another key", name)
					}
					if h.b.Has(forged) {
						t.Fatalf("%s: probe satisfied by an entry written under another key", name)
					}
				}
			})

			t.Run("CorruptRejectedAndRecomputed", func(t *testing.T) {
				h := mk(t)
				k := key(fpA, 0, 7)
				payload := []byte(`{"index":0,"seconds":1.5}`)
				if err := h.b.Put(k, payload); err != nil {
					t.Fatal(err)
				}
				h.corrupt(t, k)
				if _, ok := h.b.Get(k); ok {
					t.Fatal("corrupted entry served")
				}
				if h.rejected() == 0 {
					t.Fatal("corruption not counted as rejected anywhere in the setup")
				}
				// Recompute path: a fresh Put fully restores the cell.
				if err := h.b.Put(k, payload); err != nil {
					t.Fatal(err)
				}
				if got, ok := h.b.Get(k); !ok || !bytes.Equal(got, payload) {
					t.Fatal("entry not recoverable after corruption")
				}
			})

			t.Run("HasMirrorsGet", func(t *testing.T) {
				h := mk(t)
				k := key(fpA, 1, 7)
				if h.b.Has(k) {
					t.Fatal("Has reports an entry on an empty backend")
				}
				if err := h.b.Put(k, []byte(`{"index":1}`)); err != nil {
					t.Fatal(err)
				}
				if !h.b.Has(k) {
					t.Fatal("Has misses a written entry")
				}
				h.corrupt(t, k)
				if h.b.Has(k) {
					t.Fatal("Has affirmed a corrupt entry")
				}
				if _, ok := h.b.Get(k); ok {
					t.Fatal("Get served a corrupt entry after Has rejected it")
				}
			})

			t.Run("ConcurrentSameKeyWriters", func(t *testing.T) {
				h := mk(t)
				const goroutines = 8
				const cells = 4
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < 10; i++ {
							k := key(fpA, i%cells, 7)
							payload := []byte(fmt.Sprintf(`{"index":%d}`, i%cells))
							if err := h.b.Put(k, payload); err != nil {
								t.Error(err)
								return
							}
							if got, ok := h.b.Get(k); !ok || !bytes.Equal(got, payload) {
								t.Errorf("goroutine %d: ok=%v payload=%s", g, ok, got)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				if h.rejected() != 0 {
					t.Fatalf("concurrent writers produced %d rejected entries", h.rejected())
				}
			})
		})
	}
}
