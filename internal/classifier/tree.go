package classifier

import (
	"math"
	"sort"

	"fairbench/internal/rng"
)

// DecisionTree is a CART-style binary classification tree with weighted
// Gini impurity splits on numeric thresholds. It is both a standalone
// classifier and the base learner of RandomForest.
type DecisionTree struct {
	// MaxDepth bounds tree depth (default 100, matching the paper's
	// forest configuration).
	MaxDepth int
	// MinLeaf is the minimum weighted count in a leaf (default 2).
	MinLeaf float64
	// FeatureSubset, when > 0, restricts each split to a random subset of
	// that many features (used by the forest).
	FeatureSubset int
	// Seed drives feature subsampling.
	Seed int64

	root *treeNode
}

type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	prob        float64 // P(Y=1) at a leaf
	leaf        bool
}

// NewTree returns a decision tree with benchmark defaults.
func NewTree() *DecisionTree { return &DecisionTree{MaxDepth: 100, MinLeaf: 2} }

// Fit builds the tree. Defaults resolve into a working copy of the
// receiver's configuration (the caller's fields are never written), so a
// zero-value tree is reusable and race-free across cells.
func (t *DecisionTree) Fit(x [][]float64, y []int, w []float64) error {
	if err := checkFitInput(x, y, w); err != nil {
		return err
	}
	work := *t
	if work.MaxDepth == 0 {
		work.MaxDepth = 100
	}
	if work.MinLeaf == 0 {
		work.MinLeaf = 2
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	g := rng.New(work.Seed)
	t.root = work.build(x, y, w, idx, 0, g)
	return nil
}

func weightOf(w []float64, i int) float64 {
	if w == nil {
		return 1
	}
	return w[i]
}

func (t *DecisionTree) build(x [][]float64, y []int, w []float64, idx []int, depth int, g *rng.RNG) *treeNode {
	var tot, pos float64
	for _, i := range idx {
		wi := weightOf(w, i)
		tot += wi
		if y[i] == 1 {
			pos += wi
		}
	}
	node := &treeNode{leaf: true, prob: 0.5}
	if tot > 0 {
		node.prob = pos / tot
	}
	if depth >= t.MaxDepth || tot < 2*t.MinLeaf || pos == 0 || pos == tot {
		return node
	}
	d := len(x[0])
	features := make([]int, d)
	for j := range features {
		features[j] = j
	}
	if t.FeatureSubset > 0 && t.FeatureSubset < d {
		g.Shuffle(d, func(a, b int) { features[a], features[b] = features[b], features[a] })
		features = features[:t.FeatureSubset]
	}

	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	parentImp := gini(pos, tot)
	type fv struct {
		v   float64
		y   int
		wgt float64
	}
	for _, f := range features {
		vals := make([]fv, len(idx))
		for k, i := range idx {
			vals[k] = fv{x[i][f], y[i], weightOf(w, i)}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		var lt, lp float64
		for k := 0; k < len(vals)-1; k++ {
			lt += vals[k].wgt
			if vals[k].y == 1 {
				lp += vals[k].wgt
			}
			if vals[k].v == vals[k+1].v {
				continue
			}
			rt, rp := tot-lt, pos-lp
			if lt < t.MinLeaf || rt < t.MinLeaf {
				continue
			}
			gain := parentImp - (lt/tot)*gini(lp, lt) - (rt/tot)*gini(rp, rt)
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThresh = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return node
	}
	node.leaf = false
	node.feature = bestFeat
	node.threshold = bestThresh
	node.left = t.build(x, y, w, li, depth+1, g)
	node.right = t.build(x, y, w, ri, depth+1, g)
	return node
}

func gini(pos, tot float64) float64 {
	if tot <= 0 {
		return 0
	}
	p := pos / tot
	return 2 * p * (1 - p)
}

// PredictProba walks the tree to a leaf probability.
func (t *DecisionTree) PredictProba(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0.5
	}
	for !n.leaf {
		if n.feature < len(x) && x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}

// Depth returns the depth of the fitted tree (0 for a stump/leaf).
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// RandomForest is a bagging ensemble of decision trees with per-split
// feature subsampling. The paper's configuration is 40 trees of maximum
// depth 100 (Appendix F).
type RandomForest struct {
	// Trees is the ensemble size (default 40).
	Trees int
	// MaxDepth bounds each tree (default 100).
	MaxDepth int
	// Seed drives bootstrap sampling.
	Seed int64

	ensemble []*DecisionTree
}

// NewForest returns a random forest with the paper's defaults.
func NewForest() *RandomForest { return &RandomForest{Trees: 40, MaxDepth: 100, Seed: 11} }

// Fit trains the ensemble on bootstrap resamples. Defaults resolve into
// locals; the receiver's configuration fields are never written.
func (rf *RandomForest) Fit(x [][]float64, y []int, w []float64) error {
	if err := checkFitInput(x, y, w); err != nil {
		return err
	}
	trees, maxDepth := rf.Trees, rf.MaxDepth
	if trees == 0 {
		trees = 40
	}
	if maxDepth == 0 {
		maxDepth = 100
	}
	n := len(x)
	d := len(x[0])
	sub := int(math.Ceil(math.Sqrt(float64(d))))
	g := rng.New(rf.Seed)
	rf.ensemble = make([]*DecisionTree, trees)
	for t := 0; t < trees; t++ {
		bx := make([][]float64, n)
		by := make([]int, n)
		var bw []float64
		if w != nil {
			bw = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			j := g.Intn(n)
			bx[i], by[i] = x[j], y[j]
			if w != nil {
				bw[i] = w[j]
			}
		}
		tree := &DecisionTree{MaxDepth: maxDepth, MinLeaf: 2, FeatureSubset: sub, Seed: g.Int63()}
		if err := tree.Fit(bx, by, bw); err != nil {
			return err
		}
		rf.ensemble[t] = tree
	}
	return nil
}

// PredictProba averages the trees' leaf probabilities.
func (rf *RandomForest) PredictProba(x []float64) float64 {
	if len(rf.ensemble) == 0 {
		return 0.5
	}
	var s float64
	for _, t := range rf.ensemble {
		s += t.PredictProba(x)
	}
	return s / float64(len(rf.ensemble))
}
