package sched

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fuzzFaultFor maps one fuzz byte to the fault injected into an attempt:
// mostly clean runs, with kills, corrupt parts, stragglers (speculation
// bait), and silent hangs (heartbeat-reap bait) mixed in.
func fuzzFaultFor(data []byte, host Host, rangeIdx, n int) Fault {
	if len(data) == 0 {
		return Fault{}
	}
	id := 0
	for _, c := range host.Name {
		id = id*131 + int(c)
	}
	id = id*31 + rangeIdx*7 + n
	if id < 0 {
		id = -id
	}
	switch b := data[id%len(data)]; {
	case b < 128:
		return Fault{}
	case b < 168:
		return Fault{Kill: true}
	case b < 208:
		return Fault{Corrupt: true}
	case b < 240:
		return Fault{Delay: 150 * time.Millisecond}
	default:
		return Fault{Hang: true, Mute: true}
	}
}

// FuzzSpeculationAccept drives the scheduler through arbitrary
// winner/loser/corrupt/cancel interleavings — speculation always on, a
// fuzz-scripted FaultTransport deciding each attempt's fate — and
// asserts the acceptance invariants: every range is accepted exactly
// once (host completion XOR local fallback), a losing or corrupt part
// is never merged (the output stays byte-identical to serial), and no
// attempt debris survives the run.
func FuzzSpeculationAccept(f *testing.F) {
	spec := smallSpec()
	want := serialReference(f, spec)
	inner := newInstantInner(f, spec, 3)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255, 255})
	f.Add([]byte{130, 180, 220, 250, 0, 90})
	f.Add([]byte{220, 221, 222, 223, 224, 225, 226, 227})
	f.Add([]byte{169, 200, 140, 255, 10, 130, 245, 33, 218, 177})
	f.Fuzz(func(t *testing.T, data []byte) {
		var mu sync.Mutex
		completed := map[int]int{}
		dir := t.TempDir()
		out, rep, err := Run(spec, Options{
			Dir:    dir,
			Shards: 3,
			Hosts:  []Host{{Name: "a", Slots: 2}, {Name: "b", Slots: 2}},
			Transports: map[string]Transport{
				"local": &FaultTransport{Inner: inner, Script: func(h Host, r, n int) Fault {
					return fuzzFaultFor(data, h, r, n)
				}},
			},
			Speculate:        true,
			SpeculateFloor:   100 * time.Millisecond,
			HeartbeatTimeout: 400 * time.Millisecond,
			MaxHostFailures:  4,
			Retries:          4,
			Backoff:          -1,
			LocalFallback:    true,
			OnEvent: func(ev Event) {
				if ev.Type == EventCompleted {
					mu.Lock()
					completed[ev.Range]++
					mu.Unlock()
				}
			},
		})
		if err != nil {
			t.Fatalf("data %v: %v", data, err)
		}
		if !bytes.Equal(want, canonical(t, out)) {
			t.Fatalf("data %v: fuzzed run diverges from serial bytes (report %+v)", data, rep)
		}
		fallback := map[int]bool{}
		for _, i := range rep.Fallback {
			fallback[i] = true
		}
		for i := range rep.Ranges {
			accepts := completed[i]
			if fallback[i] {
				accepts++
			}
			if accepts != 1 {
				t.Fatalf("data %v: range %d accepted %d times (completions %d, fallback %v)",
					data, i, accepts, completed[i], fallback[i])
			}
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".json" {
				t.Fatalf("data %v: attempt debris %s survived the run", data, e.Name())
			}
		}
	})
}
