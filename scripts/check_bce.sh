#!/usr/bin/env bash
# check_bce.sh — bounds-check-elimination regression gate for the blocked
# hot kernels of the training data plane.
#
# Builds internal/matrix and internal/classifier with the compiler's BCE
# diagnostic (-gcflags=-d=ssa/check_bce) and fails if any per-element
# bounds check ("Found IsInBounds") survives in the named hot-kernel
# files — matrix/kernels.go (AffineInto / ScatterRows / SigmoidInto) and
# classifier/flatfit.go (the flat logreg/SVM/MLP fit path). These are the
# inner loops every batched grid cell runs millions of times; their
#4-wide blocked form was shaped so the prologue re-slicing proves every
# element access in range, and this gate keeps refactors from silently
# reintroducing per-element checks.
#
# Slice-header checks ("Found IsSliceInBounds") are expected and allowed:
# they are the one-time prologue bounds proofs the blocked form hoists
# out of the loops, not per-element work.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! diag="$(go build -gcflags=-d=ssa/check_bce ./internal/matrix ./internal/classifier 2>&1)"; then
    echo "$diag"
    echo "check_bce.sh: go build failed" >&2
    exit 1
fi

hot='(internal/)?(matrix/kernels|classifier/flatfit)\.go'
if regressions="$(echo "$diag" | grep -E "${hot}.*Found IsInBounds")"; then
    echo "check_bce.sh: FAIL: per-element bounds checks in hot kernels:" >&2
    echo "$regressions" >&2
    echo "check_bce.sh: restore the prologue re-slicing that proves these accesses in range" >&2
    exit 1
fi

total="$(echo "$diag" | grep -c 'Found IsInBounds' || true)"
echo "check_bce.sh: OK: no per-element bounds checks in matrix/kernels.go or classifier/flatfit.go"
echo "check_bce.sh: (${total} IsInBounds remain elsewhere in matrix+classifier — cold paths, not gated)"
