// Package preproc implements the five pre-processing approaches of the
// benchmark (Figure 5, "pre" rows): Kam-Cal reweighted resampling, the
// Feld disparate-impact remover, Calmon optimized pre-processing, the two
// Zha-Wu causal label repairs, and the two Salimi justifiable-fairness
// database repairs. Each mechanism implements fair.Repairer and is exposed
// as a complete fair.Approach through fair.PreProcessed.
package preproc

import (
	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/rng"
)

// KamCal implements Kamiran & Calders' reweighing pre-processor targeting
// demographic parity: each tuple receives weight
//
//	w(t) = P_exp(S=S_t ∧ Y=Y_t) / P_obs(S=S_t ∧ Y=Y_t)
//
// and the training set is rebuilt by weighted resampling, making S and Y
// statistically independent in the repaired data.
type KamCal struct {
	// Resample selects between the paper's weighted-resampling variant
	// (true, the evaluated Kam-Cal^dp) and pure instance weighting (false,
	// used by the ablation bench).
	Resample bool
	// Seed drives the resampling.
	Seed int64
}

// RepairName implements fair.Repairer.
func (k *KamCal) RepairName() string { return "KamCal" }

// Weights returns the reweighing weight for every tuple of d.
func (k *KamCal) Weights(d *dataset.Dataset) []float64 {
	n := float64(d.Len())
	var cnt [2][2]float64 // [s][y]
	var sTot, yTot [2]float64
	for i := range d.Y {
		cnt[d.S[i]][d.Y[i]]++
		sTot[d.S[i]]++
		yTot[d.Y[i]]++
	}
	w := make([]float64, d.Len())
	for i := range w {
		s, y := d.S[i], d.Y[i]
		obs := cnt[s][y] / n
		exp := (sTot[s] / n) * (yTot[y] / n)
		if obs <= 0 {
			w[i] = 1
			continue
		}
		w[i] = exp / obs
	}
	return w
}

// Repair implements fair.Repairer.
func (k *KamCal) Repair(train *dataset.Dataset) (*dataset.Dataset, error) {
	w := k.Weights(train)
	if !k.Resample {
		out := train.Clone()
		out.Weights = w
		return out, nil
	}
	g := rng.New(k.Seed)
	out := train.ResampleWeighted(w, train.Len(), g)
	out.Weights = nil
	return out, nil
}

// NewKamCal returns the evaluated Kam-Cal^dp approach with the given
// downstream classifier factory (nil = logistic regression).
func NewKamCal(factory classifier.Factory, seed int64) fair.Approach {
	return &fair.PreProcessed{
		ApproachName: "KamCal-DP",
		Target:       []fair.Metric{fair.MetricDI},
		Mechanism:    &KamCal{Resample: true, Seed: seed},
		Factory:      factory,
		IncludeS:     true,
	}
}

// NewKamCalWeighted returns the instance-weighting ablation variant.
func NewKamCalWeighted(factory classifier.Factory) fair.Approach {
	return &fair.PreProcessed{
		ApproachName: "KamCal-DP-Weighted",
		Target:       []fair.Metric{fair.MetricDI},
		Mechanism:    &KamCal{Resample: false},
		Factory:      factory,
		IncludeS:     true,
	}
}
