package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	t.Add("alpha", F(0.12345))
	t.Add("a-much-longer-name", F2(0.678))
	return t
}

func TestRender(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "0.123") || !strings.Contains(out, "0.68") {
		t.Fatalf("render output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("line count: %d\n%s", len(lines), out)
	}
	// Column alignment: the value column starts at the same offset on all
	// data lines.
	h := strings.Index(lines[1], "value")
	if h < 0 {
		t.Fatal("no value header")
	}
	if lines[3][h-2:h] != "  " && lines[4][h-2:h] != "  " {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %d", len(lines))
	}
	if lines[0] != "name,value" {
		t.Fatalf("csv header: %q", lines[0])
	}
}

func TestFormatters(t *testing.T) {
	if F(1.0/3) != "0.333" {
		t.Fatalf("F: %q", F(1.0/3))
	}
	if F2(1.0/3) != "0.33" {
		t.Fatalf("F2: %q", F2(1.0/3))
	}
}
